package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestRunSingleFigureGolden locks in the rendered fig3 table on a small
// deterministic corpus.
func TestRunSingleFigureGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fig", "fig3", "-n", "24", "-seed", "5"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden(t, "fig3_n24_seed5", stdout.Bytes())
}

// TestRunAllFiguresSmoke runs every experiment end to end on a tiny corpus;
// the output shape (one table per experiment) is asserted, not the bytes.
func TestRunAllFiguresSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "8", "-seed", "3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	if n := strings.Count(stdout.String(), "== "); n != 12 {
		t.Fatalf("expected 12 tables, saw %d:\n%s", n, stdout.String())
	}
}

// TestRunStageTimes: -stage-times appends the per-stage compile clock
// line after the tables; the default run must not print it (the goldens
// above pin that).
func TestRunStageTimes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fig", "fig3", "-n", "8", "-stage-times"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "stage times (distinct compilations):") ||
		!strings.Contains(out, "schedule=") {
		t.Fatalf("missing stage-times line:\n%s", out)
	}
	var plain bytes.Buffer
	if code := run([]string{"-fig", "fig3", "-n", "8"}, &plain, &stderr); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if strings.Contains(plain.String(), "stage times") {
		t.Fatal("stage times printed without the flag")
	}
}

// TestRunBadFlags is the satellite fix's contract: unknown -fig exits
// non-zero with the sorted figure list on stderr, and non-positive -n is
// rejected instead of generating an empty corpus.
func TestRunBadFlags(t *testing.T) {
	sortedList := "ablation-commlat, ablation-copyshape, ablation-invariants, ablation-moves, " +
		"clusterres, copycost, fig3, fig4, fig6, fig8, fig9, frontier, optimal, portfolio, unrollqueues"
	tests := []struct {
		name      string
		args      []string
		stderrHas string
	}{
		{"unknown figure", []string{"-fig", "fig7"}, `unknown figure "fig7"; available: ` + sortedList},
		{"zero corpus", []string{"-n", "0"}, "-n must be a positive corpus size (got 0)"},
		{"negative corpus", []string{"-n", "-5"}, "-n must be a positive corpus size (got -5)"},
		{"unknown flag", []string{"-frobnicate"}, "flag provided but not defined"},
		{"bad figure beats slow run", []string{"-fig", "nope", "-n", "1000000"}, "unknown figure"},
		{"unknown preset lists valid", []string{"-preset", "nope"},
			`unknown preset "nope" (valid: standard, stressed, traced)`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tt.args, &stdout, &stderr)
			if code == 0 {
				t.Fatalf("run(%v) exited 0", tt.args)
			}
			if !strings.Contains(stderr.String(), tt.stderrHas) {
				t.Fatalf("stderr %q does not contain %q", stderr.String(), tt.stderrHas)
			}
			if stdout.Len() != 0 {
				t.Fatalf("error path wrote to stdout: %s", stdout.String())
			}
		})
	}
}

// TestRunFrontierGolden locks in the whole-program frontier table: the
// traced programs swept across cluster counts. The table consumes the
// traced preset directly, so -n only sizes the (unused) synthetic corpus.
func TestRunFrontierGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fig", "frontier", "-n", "4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden(t, "frontier_n4", stdout.Bytes())
}

// TestRunPreset: -preset swaps the corpus for a named preset and the
// header reports the preset instead of the seed.
func TestRunPreset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fig", "fig3", "-preset", "traced"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "corpus: 6 loops (preset traced)") {
		t.Fatalf("missing preset header:\n%s", out)
	}
	if !strings.Contains(out, "== fig3:") {
		t.Fatalf("missing fig3 table:\n%s", out)
	}
}
