package vliwq_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"vliwq"
	"vliwq/internal/corpus"
)

// TestCompilerRunMatchesCompile is the acceptance contract of the
// request-centric redesign, checked at both boundaries. Byte identity: a
// request's Run output must equal Compile fed the same request text (the
// historical service path — parse the wire loop, compile it), down to the
// kernel table. Semantic identity: against Compile on the original
// in-memory loop, every schedule number must agree (display names may
// differ there: FormatLoop has to name anonymous ops to reference their
// dependences, which is invisible to the schedule itself).
func TestCompilerRunMatchesCompile(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: corpus.DefaultSeed, N: 24})
	compiler := vliwq.NewCompiler(vliwq.CompilerConfig{})
	opts := vliwq.Options{Machine: vliwq.Clustered(4), Unroll: true, SkipVerify: true}
	for _, l := range loops {
		direct, derr := vliwq.Compile(l, opts)
		req := vliwq.NewRequest(l, opts)
		res, rerr := compiler.Run(context.Background(), req)
		if (derr == nil) != (rerr == nil) {
			t.Fatalf("%s: Compile err %v, Compiler.Run err %v", l.Name, derr, rerr)
		}
		if derr != nil {
			if derr.Error() != rerr.Error() {
				t.Fatalf("%s: errors differ: %q vs %q", l.Name, derr, rerr)
			}
			continue
		}
		if res.II != direct.II || res.MII != direct.MII || res.Unrolled != direct.Unrolled ||
			res.StageCount != direct.StageCount ||
			res.Queues != direct.Queues || res.RingQueues != direct.RingQueues ||
			res.IPCStatic != direct.IPCStatic || res.IPCDynamic != direct.IPCDynamic ||
			res.Strategy != direct.Strategy {
			t.Fatalf("%s: metrics differ: Run %+v vs Compile %+v", l.Name, res, direct)
		}
		if res.Report() != direct.Report() {
			t.Fatalf("%s: reports differ:\n--- Run ---\n%s--- Compile ---\n%s", l.Name, res.Report(), direct.Report())
		}

		wireLoop, err := vliwq.ParseLoop(req.Loop)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		wireOpts, err := req.Options()
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		wire, werr := vliwq.Compile(wireLoop, wireOpts)
		if werr != nil {
			t.Fatalf("%s: wire-path Compile failed: %v", l.Name, werr)
		}
		if res.Report() != wire.Report() || res.KernelSchedule() != wire.KernelSchedule() {
			t.Fatalf("%s: Run output is not byte-identical to Compile on the same request text", l.Name)
		}
	}
}

// TestRunUntilStagedArtifacts walks the cutoffs in order and checks each
// partial Result exposes exactly the artifacts and timings of the stages
// that ran.
func TestRunUntilStagedArtifacts(t *testing.T) {
	compiler := vliwq.NewCompiler(vliwq.CompilerConfig{CacheEntries: -1})
	req := vliwq.Request{Loop: testLoop, Machine: "clustered:4", Unroll: true}
	ctx := context.Background()

	stagesOf := func(r *vliwq.Result) string {
		names := make([]string, len(r.Stages))
		for i, st := range r.Stages {
			names[i] = st.Stage.String()
			if st.Duration < 0 {
				t.Fatalf("stage %s has negative duration %v", st.Stage, st.Duration)
			}
		}
		return strings.Join(names, ",")
	}

	r, err := compiler.RunUntil(ctx, req, vliwq.StageUnroll)
	if err != nil {
		t.Fatal(err)
	}
	if r.AfterUnroll == nil || r.Sched != nil || r.Alloc != nil {
		t.Fatalf("after unroll: %+v", r)
	}
	if r.Unrolled < 2 {
		t.Fatalf("automatic unrolling did not replicate (factor %d)", r.Unrolled)
	}
	if len(r.AfterUnroll.Ops) != r.Unrolled*len(r.Input.Ops) {
		t.Fatalf("unrolled body has %d ops for factor %d over %d", len(r.AfterUnroll.Ops), r.Unrolled, len(r.Input.Ops))
	}
	if got := stagesOf(r); got != "unroll" {
		t.Fatalf("stages %q after unroll cutoff", got)
	}

	r, err = compiler.RunUntil(ctx, req, vliwq.StageCopies)
	if err != nil {
		t.Fatal(err)
	}
	if r.AfterCopies == nil || r.Sched != nil {
		t.Fatalf("after copies: %+v", r)
	}
	if len(r.AfterCopies.Ops) < len(r.AfterUnroll.Ops) {
		t.Fatal("copy insertion shrank the body")
	}
	if got := stagesOf(r); got != "unroll,copies" {
		t.Fatalf("stages %q after copies cutoff", got)
	}

	r, err = compiler.RunUntil(ctx, req, vliwq.StageSchedule)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sched == nil || r.Alloc != nil || r.II == 0 {
		t.Fatalf("after schedule: %+v", r)
	}
	if got := stagesOf(r); got != "unroll,copies,schedule" {
		t.Fatalf("stages %q after schedule cutoff", got)
	}

	r, err = compiler.RunUntil(ctx, req, vliwq.StageAlloc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Alloc == nil || r.Queues == 0 || r.IPCStatic == 0 {
		t.Fatalf("after alloc: %+v", r)
	}
	if got := stagesOf(r); got != "unroll,copies,schedule,alloc" {
		t.Fatalf("stages %q after alloc cutoff", got)
	}

	// A full verified run records all five stages; SkipVerify drops the
	// last one.
	r, err = compiler.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := stagesOf(r); got != "unroll,copies,schedule,alloc,verify" {
		t.Fatalf("stages %q after a full run", got)
	}
	skip := req
	skip.SkipVerify = true
	r, err = compiler.Run(ctx, skip)
	if err != nil {
		t.Fatal(err)
	}
	if got := stagesOf(r); got != "unroll,copies,schedule,alloc" {
		t.Fatalf("stages %q with SkipVerify", got)
	}

	if _, err := compiler.RunUntil(ctx, req, vliwq.NumStages); err == nil {
		t.Fatal("RunUntil accepted an out-of-range stage")
	}
}

// TestCompilerSessionCache: identical requests share one compilation (and
// one Result pointer), different RunUntil cutoffs do not, and the
// default spellings of one behaviour collapse onto one entry.
func TestCompilerSessionCache(t *testing.T) {
	compiler := vliwq.NewCompiler(vliwq.CompilerConfig{})
	ctx := context.Background()
	req := vliwq.Request{Loop: testLoop, SkipVerify: true}

	a, err := compiler.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := compiler.Run(ctx, vliwq.Request{Loop: testLoop, Machine: "single:6", CopyShape: "tree", Effort: "fast", SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("default spellings of one request compiled twice in one session")
	}
	if st := compiler.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("session cache misses=%d hits=%d, want 1/1", st.Misses, st.Hits)
	}
	// A partial run is a distinct cached artifact, never replayed as full.
	p, err := compiler.RunUntil(ctx, req, vliwq.StageUnroll)
	if err != nil {
		t.Fatal(err)
	}
	if p == a || p.Sched != nil {
		t.Fatal("partial run replayed the full-run entry")
	}
	if st := compiler.Stats(); st.Misses != 2 {
		t.Fatalf("cutoff did not partition the cache key (misses=%d)", st.Misses)
	}
}

// TestCompilerSessionDefaults: a session's Machine/Effort apply to
// requests that omit them and are overridden by explicit request fields;
// a bad session default surfaces as a Run error.
func TestCompilerSessionDefaults(t *testing.T) {
	compiler := vliwq.NewCompiler(vliwq.CompilerConfig{Machine: "clustered:4", Effort: "balanced", CacheEntries: -1})
	ctx := context.Background()
	res, err := compiler.Run(ctx, vliwq.Request{Loop: testLoop, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sched.Machine.Spec(); got != "clustered:4" {
		t.Fatalf("session default machine not applied (got %s)", got)
	}
	res, err = compiler.Run(ctx, vliwq.Request{Loop: testLoop, Machine: "single:4", SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sched.Machine.Spec(); got != "single:4" {
		t.Fatalf("explicit request machine lost to the session default (got %s)", got)
	}

	bad := vliwq.NewCompiler(vliwq.CompilerConfig{Machine: "mesh:4"})
	if _, err := bad.Run(ctx, vliwq.Request{Loop: testLoop}); err == nil || !strings.Contains(err.Error(), "unknown machine kind") {
		t.Fatalf("bad session default machine: err %v", err)
	}
}

// budgetCtx is a poll-only context whose Err starts reporting
// context.Canceled after a fixed number of calls — a deterministic way to
// cancel "mid-batch": the pipeline polls Err at its stage boundaries (3
// calls per compile) and the worker-pool feeder polls once per dispatched
// item, so a budget of ~100 calls lands the cancellation a predictable
// 16–25 items into a 40-item batch, far from both ends.
type budgetCtx struct {
	context.Context
	calls  atomic.Int64
	budget int64
}

func (c *budgetCtx) Err() error {
	if c.calls.Add(1) > c.budget {
		return context.Canceled
	}
	return nil
}

// Done returns nil: pool.Run's feeder also polls Err before every
// dispatch, so channel-based cancellation is not needed for this test.
func (c *budgetCtx) Done() <-chan struct{} { return nil }

// assertCancelledBatch checks the mid-batch cancellation contract on a
// result slice: full length, every entry exactly one of result/error,
// completed items keep their results (a prefix, since workers=1), and
// every unstarted item reports ctx.Err().
func assertCancelledBatch(t *testing.T, n int, get func(i int) (ok bool, err error)) {
	t.Helper()
	completed, cancelled := 0, 0
	for i := 0; i < n; i++ {
		ok, err := get(i)
		if ok == (err != nil) {
			t.Fatalf("entry %d: want exactly one of result/error (ok=%t err=%v)", i, ok, err)
		}
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("entry %d: error %v, want ctx.Err()", i, err)
		}
		if ok {
			if cancelled > 0 {
				t.Fatalf("entry %d completed after entry %d was cancelled (workers=1)", i, i-1)
			}
			completed++
		} else {
			cancelled++
		}
	}
	if completed == 0 || cancelled == 0 {
		t.Fatalf("cancellation not mid-batch: %d completed, %d cancelled of %d", completed, cancelled, n)
	}
}

// TestCompileBatchCancellationMidBatch: cancel mid-batch and assert the
// returned slice keeps len(items) entries, completed items keep their
// results, and every unstarted item reports ctx.Err().
func TestCompileBatchCancellationMidBatch(t *testing.T) {
	loop, err := vliwq.ParseLoop(testLoop)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	items := make([]vliwq.BatchItem, n)
	for i := range items {
		items[i] = vliwq.BatchItem{Loop: loop, Opts: vliwq.Options{SkipVerify: true}}
	}
	ctx := &budgetCtx{Context: context.Background(), budget: 100}
	out := vliwq.CompileBatch(ctx, items, 1)
	if len(out) != n {
		t.Fatalf("batch returned %d entries for %d items", len(out), n)
	}
	assertCancelledBatch(t, n, func(i int) (bool, error) { return out[i].Result != nil, out[i].Err })
}

// TestRunBatchCancellationMidBatch is the same contract on the
// request-centric path (an uncached session, so in-flight compiles honour
// the caller's context).
func TestRunBatchCancellationMidBatch(t *testing.T) {
	const n = 40
	reqs := make([]vliwq.Request, n)
	for i := range reqs {
		reqs[i] = vliwq.Request{Loop: testLoop, SkipVerify: true}
	}
	compiler := vliwq.NewCompiler(vliwq.CompilerConfig{CacheEntries: -1, Workers: 1})
	ctx := &budgetCtx{Context: context.Background(), budget: 100}
	out := compiler.RunBatch(ctx, reqs)
	if len(out) != n {
		t.Fatalf("batch returned %d entries for %d requests", len(out), n)
	}
	assertCancelledBatch(t, n, func(i int) (bool, error) { return out[i].Result != nil, out[i].Err })
}

// TestBatchCancelledBeforeStart: an already-cancelled context yields a
// full-length slice where every entry reports ctx.Err().
func TestBatchCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	loop, err := vliwq.ParseLoop(testLoop)
	if err != nil {
		t.Fatal(err)
	}
	out := vliwq.CompileBatch(ctx, []vliwq.BatchItem{{Loop: loop}, {Loop: loop}}, 2)
	if len(out) != 2 {
		t.Fatalf("got %d entries", len(out))
	}
	for i, r := range out {
		if r.Result != nil || !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("entry %d: %+v", i, r)
		}
	}
	rout := vliwq.NewCompiler(vliwq.CompilerConfig{}).RunBatch(ctx, []vliwq.Request{{Loop: testLoop}, {Loop: testLoop}})
	if len(rout) != 2 {
		t.Fatalf("got %d entries", len(rout))
	}
	for i, r := range rout {
		if r.Result != nil || !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("request entry %d: %+v", i, r)
		}
	}
}
